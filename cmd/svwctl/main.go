// Command svwctl fronts a pool of svwd backends as one horizontally
// scaled simulation service. It serves the same JSON/HTTP surface as a
// single svwd (run, sweep, stats, healthz, configs, benches, studies), so
// clients — svwload, curl, dashboards — point at either interchangeably.
// See internal/cluster for the fabric semantics: rendezvous routing on
// the engine memo key (backend cache affinity), bounded per-backend
// concurrency, retry-on-another-backend, optional hedging, and health
// probing.
//
// Usage:
//
//	svwctl -addr 127.0.0.1:7410 \
//	       -backends http://127.0.0.1:7411,http://127.0.0.1:7412
//	svwctl -addr 127.0.0.1:0 -backends ... # free port; printed on stdout
//
// Like svwd, svwctl prints "svwctl: listening on HOST:PORT" to stdout
// once the socket is open and drains gracefully on SIGTERM/SIGINT: the
// health endpoint flips to 503, in-flight requests get up to -drain to
// finish, then connections are closed.
//
// The backend pool is dynamic: SIGHUP re-reads -backends-file (one URL
// per line, # comments) and reconciles the pool to the union of -backends
// and the file — new members are added and probed, absent ones drain out.
// With -debug-addr set, the same reconciliation is reachable over HTTP as
// GET/POST /admin/backends on the debug listener (never the serving
// port).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"svwsim/internal/cluster"
	"svwsim/internal/debugserver"
	"svwsim/internal/pipeline"
)

// backendSet is the desired pool: the union of the -backends flag and the
// -backends-file contents (one URL per line; blank lines and # comments
// skipped), deduplicated, order preserved. Both startup and each SIGHUP
// reload compute the set the same way.
func backendSet(flagURLs, file string) ([]string, error) {
	var raw []string
	raw = append(raw, strings.Split(flagURLs, ",")...)
	if file != "" {
		data, err := os.ReadFile(file)
		if err != nil {
			return nil, fmt.Errorf("-backends-file: %v", err)
		}
		for _, line := range strings.Split(string(data), "\n") {
			if i := strings.IndexByte(line, '#'); i >= 0 {
				line = line[:i]
			}
			raw = append(raw, line)
		}
	}
	var urls []string
	seen := make(map[string]bool)
	for _, u := range raw {
		u = strings.TrimRight(strings.TrimSpace(u), "/")
		if u == "" || seen[u] {
			continue
		}
		seen[u] = true
		urls = append(urls, u)
	}
	return urls, nil
}

func main() {
	addr := flag.String("addr", "127.0.0.1:7410", "listen address (port 0 = pick a free port)")
	backends := flag.String("backends", "", "comma-separated svwd base URLs")
	backendsFile := flag.String("backends-file", "",
		"file of svwd base URLs (one per line, # comments); re-read on SIGHUP "+
			"and reconciled with -backends, so the pool grows and shrinks "+
			"without a restart")
	conc := flag.Int("backend-conc", cluster.DefaultBackendConcurrency,
		"max in-flight requests per backend")
	attempts := flag.Int("max-attempts", 0,
		"max forwarding attempts per job across backends (0 = 2x backend count)")
	hedge := flag.Duration("hedge", 0,
		"hedge a straggling job onto its fallback backend after this delay (0 = off)")
	headerTimeout := flag.Duration("response-header-timeout", 0,
		"per-attempt wait for a backend's response headers before retrying the "+
			"next ranked backend; svwd answers only after computing, so keep it "+
			"above the longest expected job (0 = 2m default, negative = no bound)")
	healthEvery := flag.Duration("health-interval", time.Second,
		"background backend health probe period (0 = passive health only)")
	maxBody := flag.Int64("max-body", cluster.DefaultMaxBodyBytes, "max request body bytes")
	maxSweep := flag.Int("max-sweep", cluster.DefaultMaxSweepJobs, "max jobs in one sweep matrix")
	storeDir := flag.String("store-dir", "",
		"coordinator-side persistent result store directory (empty = none): "+
			"computed results are written through to it and served from it when "+
			"no backend can take a job")
	storeMaxBytes := flag.Int64("store-max-bytes", 0,
		"persistent store size cap in bytes, LRU-GCed past it (0 = 1GiB default)")
	grace := flag.Duration("grace", time.Second,
		"delay between advertising 503 on healthz and closing the listener")
	drain := flag.Duration("drain", 30*time.Second, "graceful shutdown drain window")
	slowMS := flag.Int64("slow-ms", -1,
		"log traced requests slower than this many milliseconds as one JSON "+
			"line with the full span tree (0 = log every traced request, "+
			"negative = off)")
	traceBuf := flag.Int("trace-buf", 0,
		"completed request traces kept for GET /debug/traces (0 = 256)")
	debugAddr := flag.String("debug-addr", "",
		"serve net/http/pprof on this separate address (e.g. 127.0.0.1:6060); "+
			"empty = off; never exposed on the serving port")
	sampleWarmup := flag.Uint64("sample-warmup", 0,
		"fabric-wide default sampled simulation: warm-up commits per detailed "+
			"window, stamped onto forwarded requests that carry no sample spec")
	sampleDetail := flag.Uint64("sample-detail", 0,
		"fabric-wide default sampled simulation: measured commits per window (0 = exact)")
	samplePeriod := flag.Uint64("sample-period", 0,
		"fabric-wide default sampled simulation: committed instructions each window represents")
	flag.Parse()

	urls, err := backendSet(*backends, *backendsFile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "svwctl: %v\n", err)
		os.Exit(1)
	}
	c, err := cluster.New(cluster.Options{
		Backends:              urls,
		BackendConcurrency:    *conc,
		MaxAttempts:           *attempts,
		HedgeAfter:            *hedge,
		ResponseHeaderTimeout: *headerTimeout,
		MaxBodyBytes:          *maxBody,
		MaxSweepJobs:          *maxSweep,
		StoreDir:              *storeDir,
		StoreMaxBytes:         *storeMaxBytes,
		TraceBufferSize:       *traceBuf,
		SlowLogEnabled:        *slowMS >= 0,
		SlowLogThreshold:      time.Duration(*slowMS) * time.Millisecond,
		DefaultSample: pipeline.SampleSpec{
			Warmup: *sampleWarmup, Detail: *sampleDetail, Period: *samplePeriod,
		},
	})
	if err != nil {
		hint := ""
		if len(urls) == 0 {
			hint = " (use -backends url1,url2 or -backends-file)"
		}
		fmt.Fprintf(os.Stderr, "svwctl: %v%s\n", err, hint)
		os.Exit(1)
	}

	if *debugAddr != "" {
		// The membership admin endpoint shares the operator-only debug
		// listener with pprof; it must never mount on the serving port.
		dln, err := debugserver.Serve(*debugAddr,
			debugserver.Mount{Pattern: "/admin/backends", Handler: c.AdminHandler()})
		if err != nil {
			fmt.Fprintf(os.Stderr, "svwctl: -debug-addr: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("svwctl: pprof on %s\n", dln.Addr())
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	// Seed real health marks before taking traffic, then keep probing in
	// the background so idle recovery doesn't wait for a fail-open retry.
	healthy := c.ProbeAll(ctx)
	fmt.Fprintf(os.Stderr, "svwctl: %d/%d backends healthy\n", healthy, len(urls))
	if *healthEvery > 0 {
		go c.HealthLoop(ctx, *healthEvery)
	}

	// SIGHUP reload: reconcile the pool to the current -backends ∪
	// -backends-file set. Removed members drain (in-flight jobs finish on
	// the snapshot they ranked under); added ones are probed immediately.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		for range hup {
			want, err := backendSet(*backends, *backendsFile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "svwctl: reload: %v\n", err)
				continue
			}
			added, removed, err := c.SetBackends(want)
			if err != nil {
				fmt.Fprintf(os.Stderr, "svwctl: reload: %v\n", err)
				continue
			}
			fmt.Fprintf(os.Stderr, "svwctl: reload: +%v -%v (%d/%d healthy)\n",
				added, removed, c.ProbeAll(ctx), len(c.Backends()))
		}
	}()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "svwctl: %v\n", err)
		os.Exit(1)
	}
	// Stdout, unbuffered: scripts (ci.sh's cluster smoke stage) parse the
	// bound address to reach a coordinator started on port 0.
	fmt.Printf("svwctl: listening on %s\n", ln.Addr())

	srv := &http.Server{
		Handler:           c.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		fmt.Fprintf(os.Stderr, "svwctl: %v\n", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	// Graceful drain, mirroring svwd: advertise 503 on healthz, keep the
	// listener open for the grace period so load balancers observe it,
	// then stop accepting and give in-flight requests the drain window.
	fmt.Fprintln(os.Stderr, "svwctl: draining")
	c.SetDraining(true)
	time.Sleep(*grace)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		if !errors.Is(err, context.DeadlineExceeded) {
			fmt.Fprintf(os.Stderr, "svwctl: shutdown: %v\n", err)
		}
		srv.Close()
	}
	fmt.Fprintln(os.Stderr, "svwctl: stopped")
}
