// Command svwctl fronts a pool of svwd backends as one horizontally
// scaled simulation service. It serves the same JSON/HTTP surface as a
// single svwd (run, sweep, stats, healthz, configs, benches, studies), so
// clients — svwload, curl, dashboards — point at either interchangeably.
// See internal/cluster for the fabric semantics: rendezvous routing on
// the engine memo key (backend cache affinity), bounded per-backend
// concurrency, retry-on-another-backend, optional hedging, and health
// probing.
//
// Usage:
//
//	svwctl -addr 127.0.0.1:7410 \
//	       -backends http://127.0.0.1:7411,http://127.0.0.1:7412
//	svwctl -addr 127.0.0.1:0 -backends ... # free port; printed on stdout
//
// Like svwd, svwctl prints "svwctl: listening on HOST:PORT" to stdout
// once the socket is open and drains gracefully on SIGTERM/SIGINT: the
// health endpoint flips to 503, in-flight requests get up to -drain to
// finish, then connections are closed.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"svwsim/internal/cluster"
	"svwsim/internal/debugserver"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7410", "listen address (port 0 = pick a free port)")
	backends := flag.String("backends", "", "comma-separated svwd base URLs (required)")
	conc := flag.Int("backend-conc", cluster.DefaultBackendConcurrency,
		"max in-flight requests per backend")
	attempts := flag.Int("max-attempts", 0,
		"max forwarding attempts per job across backends (0 = 2x backend count)")
	hedge := flag.Duration("hedge", 0,
		"hedge a straggling job onto its fallback backend after this delay (0 = off)")
	healthEvery := flag.Duration("health-interval", time.Second,
		"background backend health probe period (0 = passive health only)")
	maxBody := flag.Int64("max-body", cluster.DefaultMaxBodyBytes, "max request body bytes")
	maxSweep := flag.Int("max-sweep", cluster.DefaultMaxSweepJobs, "max jobs in one sweep matrix")
	storeDir := flag.String("store-dir", "",
		"coordinator-side persistent result store directory (empty = none): "+
			"computed results are written through to it and served from it when "+
			"no backend can take a job")
	storeMaxBytes := flag.Int64("store-max-bytes", 0,
		"persistent store size cap in bytes, LRU-GCed past it (0 = 1GiB default)")
	grace := flag.Duration("grace", time.Second,
		"delay between advertising 503 on healthz and closing the listener")
	drain := flag.Duration("drain", 30*time.Second, "graceful shutdown drain window")
	slowMS := flag.Int64("slow-ms", -1,
		"log traced requests slower than this many milliseconds as one JSON "+
			"line with the full span tree (0 = log every traced request, "+
			"negative = off)")
	traceBuf := flag.Int("trace-buf", 0,
		"completed request traces kept for GET /debug/traces (0 = 256)")
	debugAddr := flag.String("debug-addr", "",
		"serve net/http/pprof on this separate address (e.g. 127.0.0.1:6060); "+
			"empty = off; never exposed on the serving port")
	flag.Parse()

	var urls []string
	for _, u := range strings.Split(*backends, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, strings.TrimRight(u, "/"))
		}
	}
	c, err := cluster.New(cluster.Options{
		Backends:           urls,
		BackendConcurrency: *conc,
		MaxAttempts:        *attempts,
		HedgeAfter:         *hedge,
		MaxBodyBytes:       *maxBody,
		MaxSweepJobs:       *maxSweep,
		StoreDir:           *storeDir,
		StoreMaxBytes:      *storeMaxBytes,
		TraceBufferSize:    *traceBuf,
		SlowLogEnabled:     *slowMS >= 0,
		SlowLogThreshold:   time.Duration(*slowMS) * time.Millisecond,
	})
	if err != nil {
		hint := ""
		if len(urls) == 0 {
			hint = " (use -backends url1,url2)"
		}
		fmt.Fprintf(os.Stderr, "svwctl: %v%s\n", err, hint)
		os.Exit(1)
	}

	if *debugAddr != "" {
		dln, err := debugserver.Serve(*debugAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "svwctl: -debug-addr: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("svwctl: pprof on %s\n", dln.Addr())
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	// Seed real health marks before taking traffic, then keep probing in
	// the background so idle recovery doesn't wait for a fail-open retry.
	healthy := c.ProbeAll(ctx)
	fmt.Fprintf(os.Stderr, "svwctl: %d/%d backends healthy\n", healthy, len(urls))
	if *healthEvery > 0 {
		go c.HealthLoop(ctx, *healthEvery)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "svwctl: %v\n", err)
		os.Exit(1)
	}
	// Stdout, unbuffered: scripts (ci.sh's cluster smoke stage) parse the
	// bound address to reach a coordinator started on port 0.
	fmt.Printf("svwctl: listening on %s\n", ln.Addr())

	srv := &http.Server{
		Handler:           c.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		fmt.Fprintf(os.Stderr, "svwctl: %v\n", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	// Graceful drain, mirroring svwd: advertise 503 on healthz, keep the
	// listener open for the grace period so load balancers observe it,
	// then stop accepting and give in-flight requests the drain window.
	fmt.Fprintln(os.Stderr, "svwctl: draining")
	c.SetDraining(true)
	time.Sleep(*grace)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		if !errors.Is(err, context.DeadlineExceeded) {
			fmt.Fprintf(os.Stderr, "svwctl: shutdown: %v\n", err)
		}
		srv.Close()
	}
	fmt.Fprintln(os.Stderr, "svwctl: stopped")
}
