// Command svwtrace prints a SimpleScalar-style pipetrace: one line per
// committed instruction with its fetch/rename/issue/complete/rex/commit
// cycles and SVW annotations, for a window of the run. Useful for seeing
// the re-execution pipeline's serialization (stores commit only after older
// marked loads clear the rex stage) and the filter excusing loads.
//
//	go run ./cmd/svwtrace -bench gcc -config ssq+svw -start 20000 -n 40
//
// Flags mirror cmd/svwsim's configuration names.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"svwsim/internal/pipeline"
	"svwsim/internal/sim"
	"svwsim/internal/workload"
)

func main() {
	bench := flag.String("bench", "gcc", "benchmark kernel")
	config := flag.String("config", "ssq+svw", "machine configuration")
	start := flag.Uint64("start", 20_000, "first committed instruction to trace")
	n := flag.Uint64("n", 40, "instructions to trace")
	flag.Parse()

	cfg, ok := sim.ConfigByName(*config)
	if !ok {
		fmt.Fprintf(os.Stderr, "svwtrace: unknown config %q\n", *config)
		os.Exit(2)
	}
	if _, ok := workload.Get(*bench); !ok {
		fmt.Fprintf(os.Stderr, "svwtrace: unknown benchmark %q\n", *bench)
		os.Exit(2)
	}
	cfg.MaxInsts = *start + *n + 1000
	cfg.WarmupInsts = 0

	fmt.Printf("%8s %-26s %9s %9s %9s %9s %9s %9s  flags\n",
		"seq", "instruction", "fetch", "rename", "issue", "complete", "rex", "commit")
	traced := uint64(0)
	var base uint64
	cfg.TraceCommit = func(r pipeline.TraceRecord) {
		if r.Seq < *start || traced >= *n {
			return
		}
		if traced == 0 {
			base = r.FetchC
		}
		traced++
		rex := "-"
		if r.RexDoneC != ^uint64(0) {
			rex = fmt.Sprint(int64(r.RexDoneC - base))
		}
		var flags []string
		if r.Marked {
			flags = append(flags, "marked")
		}
		if r.Filtered {
			flags = append(flags, "svw-filtered")
		}
		if r.Eliminated {
			flags = append(flags, "eliminated")
		}
		if r.Forwarded {
			flags = append(flags, "fwd")
		}
		fmt.Printf("%8d %-26s %9d %9d %9d %9d %9s %9d  %s\n",
			r.Seq, r.Text,
			r.FetchC-base, r.RenameC-base, r.IssueC-base,
			r.CompleteC-base, rex, r.CommitC-base,
			strings.Join(flags, ","))
	}

	p := workload.BuildByName(*bench)
	core := pipeline.New(cfg, p)
	if err := core.Run(); err != nil {
		fmt.Fprintf(os.Stderr, "svwtrace: %v\n", err)
		os.Exit(1)
	}
}
