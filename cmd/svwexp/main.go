// Command svwexp regenerates the paper's evaluation: one flag per figure or
// sensitivity study. Each figure prints the same rows/series the paper
// plots: per-benchmark re-execution rates (top panel) and percent speedups
// over the study's baseline (bottom panel).
//
// Usage:
//
//	svwexp -fig 5            # NLQls study (paper Fig. 5)
//	svwexp -fig 6            # SSQ study (Fig. 6)
//	svwexp -fig 7            # RLE study (Fig. 7)
//	svwexp -fig 8            # SSBF organization sensitivity (Fig. 8)
//	svwexp -ssnwidth         # §3.6: SSN width / wrap-drain cost
//	svwexp -ssbfupd          # §3.6: speculative vs atomic SSBF updates
//	svwexp -summary          # abstract: aggregate re-execution reduction
//	svwexp -retports         # setup ablation: 1 vs 2 store retirement ports
//	svwexp -nlqsm            # extension: NLQsm invalidation mechanism demo
//	svwexp -all              # everything above
//
// All studies run through one shared experiment engine: -j bounds the
// worker pool (0 = GOMAXPROCS), -timeout bounds each job, and repeated
// (config, benchmark) pairs — ladder baselines, the summary study's
// re-sweep of Figs. 5–7 under -all — execute exactly once and are served
// from the engine's memo thereafter. -json switches the figure reports to
// machine-readable output; -stats reports the engine's reuse counters on
// stderr at exit. The -sample-* flags switch every study to sampled
// simulation (see pipeline.SampleSpec); sampled runs memoize under their
// own keys, so they never contaminate exact results.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"strings"

	"svwsim/internal/pipeline"
	"svwsim/internal/sim"
	"svwsim/internal/sim/engine"
	"svwsim/internal/workload"
)

func main() {
	fig := flag.Int("fig", 0, "reproduce figure 5..8")
	ssnwidth := flag.Bool("ssnwidth", false, "SSN width sensitivity (§3.6)")
	ssbfupd := flag.Bool("ssbfupd", false, "SSBF update policy (§3.6)")
	summary := flag.Bool("summary", false, "aggregate SVW re-execution reduction")
	retports := flag.Bool("retports", false, "retirement-port ablation")
	nlqsm := flag.Bool("nlqsm", false, "NLQsm invalidation mechanism demo")
	all := flag.Bool("all", false, "run everything")
	insts := flag.Uint64("insts", 0, "committed instructions per run (0 = config default)")
	workers := flag.Int("j", 0, "parallel workers (0 = GOMAXPROCS)")
	par := flag.Int("par", 0, "alias for -j (deprecated)")
	timeout := flag.Duration("timeout", 0, "per-job wall-clock limit (0 = none)")
	jsonOut := flag.Bool("json", false, "machine-readable output")
	progress := flag.Bool("progress", false, "stream per-job progress to stderr (in job order)")
	stats := flag.Bool("stats", false, "report engine run/memo counters on stderr")
	benchList := flag.String("benches", "", "comma-separated benchmark subset")
	sampleWarmup := flag.Uint64("sample-warmup", 0,
		"sampled simulation: detailed warm-up commits per window (counters reset after)")
	sampleDetail := flag.Uint64("sample-detail", 0,
		"sampled simulation: measured commits per window (0 = exact simulation)")
	samplePeriod := flag.Uint64("sample-period", 0,
		"sampled simulation: committed instructions each window represents; "+
			"the gap past warmup+detail is fast-forwarded functionally")
	flag.Parse()

	spec := pipeline.SampleSpec{Warmup: *sampleWarmup, Detail: *sampleDetail, Period: *samplePeriod}
	if err := spec.Validate(); err != nil {
		fatalf("%v", err)
	}

	benches := sim.AllBenches()
	if *benchList != "" {
		benches = strings.Split(*benchList, ",")
		for _, b := range benches {
			if _, ok := workload.Get(b); !ok {
				fatalf("unknown benchmark %q", b)
			}
		}
	}

	if *workers == 0 {
		*workers = *par
	}
	eng := engine.New(*workers)
	eng.SetTimeout(*timeout)
	if *progress {
		eng.SetProgress(func(r engine.JobResult) {
			src := "ran"
			if r.Memoized {
				src = "memo"
			}
			fmt.Fprintf(os.Stderr, "svwexp: [%s] %s on %-10s %-4s IPC=%.3f rex=%.1f%%\n",
				r.Job.Study, r.Job.Config.Name, r.Job.Bench, src,
				r.Result.IPC(), 100*r.Result.Stats.RexRate())
		})
	}
	h := &harness{eng: eng, insts: *insts, json: *jsonOut, sample: spec}

	ran := false
	run := func(cond bool, f func()) {
		if cond || *all {
			f()
			ran = true
		}
	}
	run(*fig == 5, func() { h.runLadder(sim.Fig5Ladder(), benches, 5) })
	run(*fig == 6, func() { h.runLadder(sim.Fig6Ladder(), benches, 6) })
	run(*fig == 7, func() { h.runLadder(sim.Fig7Ladder(), benches, 7) })
	run(*fig == 8, func() { h.runFig8() })
	run(*ssnwidth, func() { h.runSSNWidth(benches) })
	run(*ssbfupd, func() { h.runSSBFUpd(benches) })
	run(*summary, func() { h.runSummary(benches) })
	run(*retports, func() { h.runRetPorts(benches) })
	run(*nlqsm, func() { h.runNLQSM(benches) })

	if !ran {
		flag.Usage()
		os.Exit(2)
	}
	if *stats {
		m := eng.Memo()
		fmt.Fprintf(os.Stderr, "svwexp: engine executed %d unique jobs, served %d from memo\n",
			m.Misses, m.Hits)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "svwexp: "+format+"\n", args...)
	os.Exit(1)
}

// harness carries the shared engine and output mode through the studies.
type harness struct {
	eng    *engine.Engine
	insts  uint64
	json   bool
	sample pipeline.SampleSpec
}

func (h *harness) emitJSON(v any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		fatalf("%v", err)
	}
}

func (h *harness) ladder(l sim.Ladder, benches []string) *sim.LadderResult {
	res, err := sim.RunLaddersSampled(context.Background(), h.eng, []sim.Ladder{l}, benches, h.insts, h.sample)
	if err != nil {
		fatalf("%v", err)
	}
	return res[0]
}

func (h *harness) runLadder(l sim.Ladder, benches []string, fig int) {
	res := h.ladder(l, benches)

	// Figs. 6 and 7 shade a split of one rung's re-execution rate; Fig. 7
	// additionally reports the optimization's elimination rates. One set of
	// rate accessors feeds both the table and the JSON paths so the two
	// outputs cannot drift apart.
	bdCi := -1
	var top, bottom string
	var topRate, bottomRate func(*sim.Result) float64
	var elimPct []float64
	switch fig {
	case 6:
		bdCi, top, bottom = 2, "fsq", "best-effort"
		topRate = func(r *sim.Result) float64 { return r.Stats.RexRateFSQ() }
		bottomRate = func(r *sim.Result) float64 { return r.Stats.RexRateBest() }
	case 7:
		bdCi, top, bottom = 1, "reuse", "bypass"
		topRate = func(r *sim.Result) float64 { return r.Stats.RexRateReuse() }
		bottomRate = func(r *sim.Result) float64 { return r.Stats.RexRateBypass() }
		for bi := range benches {
			elimPct = append(elimPct, math.Round(100_000*res.Runs[0][bi].Stats.ElimRate())/1000)
		}
	}

	if h.json {
		var breakdown *sim.BreakdownJSON
		if bdCi >= 0 {
			b := res.Breakdown(bdCi, top, bottom, topRate, bottomRate)
			breakdown = &b
		}
		h.emitJSON(struct {
			sim.LadderJSON
			Breakdown *sim.BreakdownJSON `json:"breakdown,omitempty"`
			ElimPct   []float64          `json:"elim_pct,omitempty"`
		}{res.JSON(), breakdown, elimPct})
		return
	}
	res.Print(os.Stdout)
	if bdCi >= 0 {
		res.PrintBreakdown(os.Stdout, bdCi, top, bottom, topRate, bottomRate)
	}
	if fig == 7 {
		fmt.Printf("elimination rates (RLE):")
		for bi, b := range benches {
			fmt.Printf(" %s=%.0f%%", b, elimPct[bi])
		}
		fmt.Println()
	}
}

func (h *harness) runFig8() {
	res, err := sim.RunFig8Sampled(context.Background(), h.eng, workload.Fig8Subset(), h.insts, h.sample)
	if err != nil {
		fatalf("%v", err)
	}
	if h.json {
		h.emitJSON(res.JSON())
		return
	}
	res.Print(os.Stdout)
}

func (h *harness) runSSNWidth(benches []string) {
	res, err := sim.RunSSNWidthSampled(context.Background(), h.eng, benches, []int{8, 10, 12, 16, 0}, h.insts, h.sample)
	if err != nil {
		fatalf("%v", err)
	}
	if h.json {
		h.emitJSON(res.JSON())
		return
	}
	res.Print(os.Stdout)
}

func (h *harness) runSSBFUpd(benches []string) {
	res, err := sim.RunSSBFUpdatePolicySampled(context.Background(), h.eng, benches, h.insts, h.sample)
	if err != nil {
		fatalf("%v", err)
	}
	if h.json {
		h.emitJSON(res.JSON())
		return
	}
	res.Print(os.Stdout)
}

// runSummary reproduces the abstract's headline: the average re-execution
// reduction SVW delivers across the three optimizations. Under -all the
// shared engine serves every run from the figure sweeps' memo.
func (h *harness) runSummary(benches []string) {
	type study struct {
		name   string
		ladder sim.Ladder
		rawIdx int
		svwIdx int
	}
	studies := []study{
		{"NLQls", sim.Fig5Ladder(), 0, 2},
		{"SSQ", sim.Fig6Ladder(), 0, 2},
		{"RLE", sim.Fig7Ladder(), 0, 1},
	}
	type line struct {
		Study        string  `json:"study"`
		RawRexPct    float64 `json:"raw_rex_pct"`
		SVWRexPct    float64 `json:"svw_rex_pct"`
		ReductionPct float64 `json:"reduction_pct"`
	}
	var lines []line
	var total float64
	for _, s := range studies {
		res := h.ladder(s.ladder, benches)
		raw := res.AvgRexRate(s.rawIdx)
		svw := res.AvgRexRate(s.svwIdx)
		red := 0.0
		if raw > 0 {
			red = (1 - svw/raw) * 100
		}
		total += red
		lines = append(lines, line{s.name, 100 * raw, 100 * svw, red})
	}
	avg := total / float64(len(studies))
	if h.json {
		h.emitJSON(struct {
			Studies         []line  `json:"studies"`
			AvgReductionPct float64 `json:"avg_reduction_pct"`
		}{lines, avg})
		return
	}
	fmt.Println("SVW re-execution reduction (abstract claims ~85% average)")
	for _, l := range lines {
		fmt.Printf("  %-6s raw %5.1f%% -> svw %5.1f%%  (reduction %5.1f%%)\n",
			l.Study, l.RawRexPct, l.SVWRexPct, l.ReductionPct)
	}
	fmt.Printf("  average reduction across optimizations: %.1f%%\n", avg)
}

// runRetPorts reproduces the setup remark that dual store retirement ports
// only help vortex (~6%) on the 8-wide machine.
func (h *harness) runRetPorts(benches []string) {
	var jobs []engine.Job
	for _, b := range benches {
		two := sim.BaselineNLQ()
		two.RetirePorts = 2
		two.Name = "base-2port"
		jobs = append(jobs,
			engine.Job{Study: "retports", Label: "1port", Config: sim.BaselineNLQ(), Bench: b, Insts: h.insts, Sample: h.sample},
			engine.Job{Study: "retports", Label: "2port", Config: two, Bench: b, Insts: h.insts, Sample: h.sample},
		)
	}
	rs, err := h.eng.Run(jobs, nil)
	if err != nil {
		fatalf("%v", err)
	}
	type line struct {
		Bench   string  `json:"bench"`
		GainPct float64 `json:"gain_pct"`
	}
	var lines []line
	for i := 0; i < len(rs); i += 2 {
		lines = append(lines, line{rs[i].Job.Bench, sim.Speedup(&rs[i].Result, &rs[i+1].Result)})
	}
	if h.json {
		h.emitJSON(lines)
		return
	}
	fmt.Println("store retirement ports: % IPC gain of 2 ports over 1 (baseline 8-wide)")
	for _, l := range lines {
		fmt.Printf("  %-8s %+6.1f%%\n", l.Bench, l.GainPct)
	}
}

// runNLQSM exercises the NLQsm banked-invalidation mechanism with the
// synthetic injector (extension; the paper does not evaluate NLQsm either).
func (h *harness) runNLQSM(benches []string) {
	var jobs []engine.Job
	for _, b := range benches {
		cfg := sim.NLQ(sim.SVWUpd)
		cfg.NLQSM = pipeline.NLQSMConfig{Enabled: true, IntervalCycles: 200}
		cfg.Name = "nlq+svw+sm"
		jobs = append(jobs, engine.Job{Study: "nlqsm", Label: b, Config: cfg, Bench: b, Insts: h.insts, Sample: h.sample})
	}
	rs, err := h.eng.Run(jobs, nil)
	if err != nil {
		fatalf("%v", err)
	}
	type line struct {
		Bench         string  `json:"bench"`
		Invalidations uint64  `json:"invalidations"`
		RexPct        float64 `json:"rex_pct"`
		SMRexPct      float64 `json:"sm_rex_pct"`
		IPC           float64 `json:"ipc"`
	}
	var lines []line
	for _, r := range rs {
		s := &r.Result.Stats
		lines = append(lines, line{r.Job.Bench, s.Invalidations,
			100 * s.RexRate(), 100 * s.RexRateNLQSM(), s.IPC()})
	}
	if h.json {
		h.emitJSON(lines)
		return
	}
	fmt.Println("NLQsm extension: injected invalidations, marked loads, filter behaviour")
	for _, l := range lines {
		fmt.Printf("  %-8s invals=%d rex=%.1f%% (sm-marked rex %.1f%%) IPC=%.2f\n",
			l.Bench, l.Invalidations, l.RexPct, l.SMRexPct, l.IPC)
	}
}
