// Command svwexp regenerates the paper's evaluation: one flag per figure or
// sensitivity study. Each figure prints the same rows/series the paper
// plots: per-benchmark re-execution rates (top panel) and percent speedups
// over the study's baseline (bottom panel).
//
// Usage:
//
//	svwexp -fig 5            # NLQls study (paper Fig. 5)
//	svwexp -fig 6            # SSQ study (Fig. 6)
//	svwexp -fig 7            # RLE study (Fig. 7)
//	svwexp -fig 8            # SSBF organization sensitivity (Fig. 8)
//	svwexp -ssnwidth         # §3.6: SSN width / wrap-drain cost
//	svwexp -ssbfupd          # §3.6: speculative vs atomic SSBF updates
//	svwexp -summary          # abstract: aggregate re-execution reduction
//	svwexp -retports         # setup ablation: 1 vs 2 store retirement ports
//	svwexp -nlqsm            # extension: NLQsm invalidation mechanism demo
//	svwexp -all              # everything above
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"svwsim/internal/pipeline"
	"svwsim/internal/sim"
	"svwsim/internal/workload"
)

func main() {
	fig := flag.Int("fig", 0, "reproduce figure 5..8")
	ssnwidth := flag.Bool("ssnwidth", false, "SSN width sensitivity (§3.6)")
	ssbfupd := flag.Bool("ssbfupd", false, "SSBF update policy (§3.6)")
	summary := flag.Bool("summary", false, "aggregate SVW re-execution reduction")
	retports := flag.Bool("retports", false, "retirement-port ablation")
	nlqsm := flag.Bool("nlqsm", false, "NLQsm invalidation mechanism demo")
	all := flag.Bool("all", false, "run everything")
	insts := flag.Uint64("insts", 0, "committed instructions per run (0 = config default)")
	par := flag.Int("par", 0, "parallel runs (0 = GOMAXPROCS)")
	benchList := flag.String("benches", "", "comma-separated benchmark subset")
	flag.Parse()

	benches := sim.AllBenches()
	if *benchList != "" {
		benches = strings.Split(*benchList, ",")
		for _, b := range benches {
			if _, ok := workload.Get(b); !ok {
				fatalf("unknown benchmark %q", b)
			}
		}
	}

	ran := false
	run := func(cond bool, f func()) {
		if cond || *all {
			f()
			ran = true
		}
	}
	run(*fig == 5, func() { runLadder(sim.Fig5Ladder(), benches, *insts, *par, 5) })
	run(*fig == 6, func() { runLadder(sim.Fig6Ladder(), benches, *insts, *par, 6) })
	run(*fig == 7, func() { runLadder(sim.Fig7Ladder(), benches, *insts, *par, 7) })
	run(*fig == 8, func() { runFig8(*insts, *par) })
	run(*ssnwidth, func() { runSSNWidth(benches, *insts, *par) })
	run(*ssbfupd, func() { runSSBFUpd(benches, *insts, *par) })
	run(*summary, func() { runSummary(benches, *insts, *par) })
	run(*retports, func() { runRetPorts(benches, *insts, *par) })
	run(*nlqsm, func() { runNLQSM(benches, *insts, *par) })

	if !ran {
		flag.Usage()
		os.Exit(2)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "svwexp: "+format+"\n", args...)
	os.Exit(1)
}

func runLadder(l sim.Ladder, benches []string, insts uint64, par, fig int) {
	res, err := sim.RunLadder(l, benches, insts, par)
	if err != nil {
		fatalf("%v", err)
	}
	res.Print(os.Stdout)
	switch fig {
	case 6:
		res.PrintBreakdown(os.Stdout, 2, "fsq", "best-effort",
			func(r *sim.Result) float64 { return r.Stats.RexRateFSQ() },
			func(r *sim.Result) float64 { return r.Stats.RexRateBest() })
	case 7:
		res.PrintBreakdown(os.Stdout, 1, "reuse", "bypass",
			func(r *sim.Result) float64 { return r.Stats.RexRateReuse() },
			func(r *sim.Result) float64 { return r.Stats.RexRateBypass() })
		fmt.Printf("elimination rates (RLE):")
		for bi, b := range benches {
			fmt.Printf(" %s=%.0f%%", b, 100*res.Runs[0][bi].Stats.ElimRate())
		}
		fmt.Println()
	}
}

func runFig8(insts uint64, par int) {
	res, err := sim.RunFig8(workload.Fig8Subset(), insts, par)
	if err != nil {
		fatalf("%v", err)
	}
	res.Print(os.Stdout)
}

func runSSNWidth(benches []string, insts uint64, par int) {
	res, err := sim.RunSSNWidth(benches, []int{8, 10, 12, 16, 0}, insts, par)
	if err != nil {
		fatalf("%v", err)
	}
	res.Print(os.Stdout)
}

func runSSBFUpd(benches []string, insts uint64, par int) {
	res, err := sim.RunSSBFUpdatePolicy(benches, insts, par)
	if err != nil {
		fatalf("%v", err)
	}
	res.Print(os.Stdout)
}

// runSummary reproduces the abstract's headline: the average re-execution
// reduction SVW delivers across the three optimizations.
func runSummary(benches []string, insts uint64, par int) {
	type study struct {
		name   string
		ladder sim.Ladder
		rawIdx int
		svwIdx int
	}
	studies := []study{
		{"NLQls", sim.Fig5Ladder(), 0, 2},
		{"SSQ", sim.Fig6Ladder(), 0, 2},
		{"RLE", sim.Fig7Ladder(), 0, 1},
	}
	fmt.Println("SVW re-execution reduction (abstract claims ~85% average)")
	var total float64
	for _, s := range studies {
		res, err := sim.RunLadder(s.ladder, benches, insts, par)
		if err != nil {
			fatalf("%v", err)
		}
		raw := res.AvgRexRate(s.rawIdx)
		svw := res.AvgRexRate(s.svwIdx)
		red := 0.0
		if raw > 0 {
			red = (1 - svw/raw) * 100
		}
		total += red
		fmt.Printf("  %-6s raw %5.1f%% -> svw %5.1f%%  (reduction %5.1f%%)\n",
			s.name, 100*raw, 100*svw, red)
	}
	fmt.Printf("  average reduction across optimizations: %.1f%%\n", total/float64(len(studies)))
}

// runRetPorts reproduces the setup remark that dual store retirement ports
// only help vortex (~6%) on the 8-wide machine.
func runRetPorts(benches []string, insts uint64, par int) {
	fmt.Println("store retirement ports: % IPC gain of 2 ports over 1 (baseline 8-wide)")
	for _, b := range benches {
		one, err := sim.Run(sim.BaselineNLQ(), b, insts)
		if err != nil {
			fatalf("%v", err)
		}
		cfg := sim.BaselineNLQ()
		cfg.RetirePorts = 2
		cfg.Name = "base-2port"
		two, err := sim.Run(cfg, b, insts)
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("  %-8s %+6.1f%%\n", b, sim.Speedup(&one, &two))
	}
}

// runNLQSM exercises the NLQsm banked-invalidation mechanism with the
// synthetic injector (extension; the paper does not evaluate NLQsm either).
func runNLQSM(benches []string, insts uint64, par int) {
	fmt.Println("NLQsm extension: injected invalidations, marked loads, filter behaviour")
	for _, b := range benches {
		cfg := sim.NLQ(sim.SVWUpd)
		cfg.NLQSM = pipeline.NLQSMConfig{Enabled: true, IntervalCycles: 200}
		cfg.Name = "nlq+svw+sm"
		res, err := sim.Run(cfg, b, insts)
		if err != nil {
			fatalf("%v", err)
		}
		s := &res.Stats
		fmt.Printf("  %-8s invals=%d rex=%.1f%% (sm-marked rex %.1f%%) IPC=%.2f\n",
			b, s.Invalidations, 100*s.RexRate(), 100*s.RexRateNLQSM(), s.IPC())
	}
}
