#!/bin/sh
# ci.sh — the repository's test gate. Mirrors what a hosted CI job runs:
# static checks, a full build, the race-enabled test suite, and a one-shot
# engine benchmark so sweep scaling regressions surface early.
set -eux

go vet ./...
go build ./...
go test -race ./...
go test -bench=Engine -benchtime=1x -run='^$' ./internal/sim/engine
