#!/bin/sh
# ci.sh — the repository's test gate. Mirrors what a hosted CI job runs:
# static checks, a full build, the race-enabled test suite (covering the
# ring-buffer timing core and the svwctl coordinator's concurrency/fault
# tests), a fuzz smoke over the differential and builder fuzzers, a
# one-shot engine benchmark so sweep scaling regressions surface early,
# the measured-performance gate against BENCH_pipeline.json, an svwd
# smoke stage that boots the daemon and byte-compares its responses
# against the svwsim CLI, a sampled-simulation smoke stage (determinism,
# key disjointness, checkpoint reuse), and a cluster smoke stage that does
# the same run/sweep comparison through svwctl fronting two svwd children.
#
#   ./ci.sh            run the full gate
#   ./ci.sh benchjson  re-capture the 'current' block of BENCH_pipeline.json
#                      (cmd/benchgate -capture) and exit
set -eux

# benchjson mode: refresh the recorded performance trajectory.
if [ "${1:-}" = "benchjson" ]; then
    go run ./cmd/benchgate -capture
    exit 0
fi

# Formatting gate: gofmt must have nothing to rewrite.
fmt=$(gofmt -l .)
if [ -n "$fmt" ]; then
    echo "gofmt needs to run on:" "$fmt" >&2
    exit 1
fi

go vet ./...
go build ./...
go test -race ./...
go test -bench=Engine -benchtime=1x -run='^$' ./internal/sim/engine
go test -bench=Store -benchtime=1x -run='^$' ./internal/store

# Fuzz smoke: each fuzzer gets a short budget; any crasher fails the gate.
go test -fuzz='^FuzzProgBuilder$' -fuzztime=10s -run='^$' ./internal/prog
go test -fuzz='^FuzzWorkloadProfile$' -fuzztime=10s -run='^$' ./internal/workload

# Measured-performance gate: BenchmarkEngine/j=1 must hold its speedup over
# the pre-rewrite baseline recorded in BENCH_pipeline.json.
go run ./cmd/benchgate -compare

# svwd smoke: boot the daemon on a random port, drive one /v1/run and one
# /v1/sweep through svwload -smoke, and require the responses to be
# byte-identical to the equivalent svwsim -json invocations.
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
go build -o "$tmp" ./cmd/svwd ./cmd/svwload ./cmd/svwsim ./cmd/svwstore

# wait_listening <stdout-file> <label> <stderr-file>: block until the
# daemon prints its listening line (all smoke stages share this).
wait_listening() {
    i=0
    while ! grep -q 'listening on' "$1"; do
        i=$((i + 1))
        if [ "$i" -gt 100 ]; then
            echo "$2 did not come up" >&2
            cat "$3" >&2
            exit 1
        fi
        sleep 0.1
    done
}

"$tmp/svwd" -addr 127.0.0.1:0 -j 4 -grace 0 >"$tmp/svwd.out" 2>"$tmp/svwd.err" &
svwd_pid=$!
trap 'kill "$svwd_pid" 2>/dev/null || true; rm -rf "$tmp"' EXIT

wait_listening "$tmp/svwd.out" "svwd" "$tmp/svwd.err"
addr=$(sed -n 's/^svwd: listening on //p' "$tmp/svwd.out")

smoke_insts=20000
"$tmp/svwload" -smoke -url "http://$addr" \
    -configs ssq+svw -benches gcc,twolf -insts "$smoke_insts" >"$tmp/got.json"
"$tmp/svwsim" -json -config ssq+svw -bench gcc -insts "$smoke_insts" >"$tmp/want.json"
"$tmp/svwsim" -json -config ssq+svw -bench gcc,twolf -insts "$smoke_insts" >>"$tmp/want.json"
cmp "$tmp/got.json" "$tmp/want.json"

# Observability smoke: the daemon must expose Prometheus text with the
# request histograms, per-stage timings and gate occupancy series.
"$tmp/svwload" -metrics -url "http://$addr" >"$tmp/svwd_metrics.txt"
grep -q '^svw_http_request_seconds_bucket' "$tmp/svwd_metrics.txt"
grep -q '^svw_http_requests_total{code="200",endpoint="/v1/run"}' "$tmp/svwd_metrics.txt"
grep -q '^svw_stage_seconds_bucket{stage="engine_run"' "$tmp/svwd_metrics.txt"
grep -q '^svw_gate_in_use' "$tmp/svwd_metrics.txt"
grep -q '^svw_store_requests_total{tier="miss"}' "$tmp/svwd_metrics.txt"

# Deadline smoke: a hopeless budget must surface as counted 504s in the
# report, not a fatal error (exit 0 with the deadline line present). The
# 8-job sweep exceeds the daemon's 4 workers, so some jobs are still
# queued when the 1ms budget fires — those sweeps come back 504.
"$tmp/svwload" -url "http://$addr" -c 2 -n 2 -deadline 1ms \
    -configs ssq,nlq,rle,ssq+svw -benches gcc,twolf -insts 500000 >"$tmp/deadline.out"
grep -q 'deadline exceeded (504)' "$tmp/deadline.out"

# Graceful drain: SIGTERM must stop the daemon cleanly.
kill -TERM "$svwd_pid"
wait "$svwd_pid"
trap 'rm -rf "$tmp"' EXIT

# Warm-restart smoke: a svwsim sweep pre-warms a persistent store
# directory; an svwd booted on that directory must answer the same jobs
# byte-identically with ZERO engine executions — every result comes off
# the disk tier (or the memory tier it was promoted into).
storedir="$tmp/store"
"$tmp/svwsim" -json -config ssq+svw -bench gcc,twolf -insts "$smoke_insts" \
    -store-dir "$storedir" >"$tmp/prewarm.json"
# The store-enabled pre-warm pass itself must be byte-identical to a
# plain store-less sweep.
"$tmp/svwsim" -json -config ssq+svw -bench gcc,twolf -insts "$smoke_insts" >"$tmp/want2.json"
cmp "$tmp/prewarm.json" "$tmp/want2.json"

"$tmp/svwd" -addr 127.0.0.1:0 -j 4 -grace 0 -store-dir "$storedir" \
    >"$tmp/svwd2.out" 2>"$tmp/svwd2.err" &
svwd2_pid=$!
trap 'kill "$svwd2_pid" 2>/dev/null || true; rm -rf "$tmp"' EXIT
wait_listening "$tmp/svwd2.out" "restarted svwd" "$tmp/svwd2.err"
addr2=$(sed -n 's/^svwd: listening on //p' "$tmp/svwd2.out")

"$tmp/svwload" -smoke -url "http://$addr2" \
    -configs ssq+svw -benches gcc,twolf -insts "$smoke_insts" >"$tmp/warm_got.json"
cmp "$tmp/warm_got.json" "$tmp/want.json"

# Zero executions: the engine was never consulted, and the disk tier
# actually served (the run plus the sweep's first probe may promote to
# memory, but at least one job must have come off the disk).
"$tmp/svwload" -stats -url "http://$addr2" >"$tmp/warm_stats.json"
grep -q '"memo_misses": 0' "$tmp/warm_stats.json"
grep -q '"memo_hits": 0' "$tmp/warm_stats.json"
grep -Eq '"disk_hits": [1-9]' "$tmp/warm_stats.json"

kill -TERM "$svwd2_pid"
wait "$svwd2_pid"
trap 'rm -rf "$tmp"' EXIT

# Store admin smoke: the directory the warm restart just served from must
# pass a full offline checksum walk, and a gc under the default cap must
# find nothing to collect and leave the directory still verifying clean.
"$tmp/svwstore" ls "$storedir" | grep -q ' entries, '
"$tmp/svwstore" verify "$storedir"
"$tmp/svwstore" gc "$storedir" >"$tmp/svwstore_gc.out"
grep -q '^removed 0 entries' "$tmp/svwstore_gc.out"
"$tmp/svwstore" verify "$storedir"

# Sampled smoke: sampled runs must be deterministic (two invocations
# byte-identical), must differ from the exact sweep (their results live
# under disjoint store keys and carry scaled counters), and with a store
# their fast-forward warm states are checkpointed: a different config over
# the same store re-uses every skip point instead of re-emulating, and
# svwstore verify accepts checkpoint entries like any result entry.
sample_flags="-sample-warmup 1000 -sample-detail 1000 -sample-period 5000"
"$tmp/svwsim" -json -config ssq+svw -bench gcc,twolf -insts "$smoke_insts" \
    $sample_flags >"$tmp/sampled1.json"
"$tmp/svwsim" -json -config ssq+svw -bench gcc,twolf -insts "$smoke_insts" \
    $sample_flags >"$tmp/sampled2.json"
cmp "$tmp/sampled1.json" "$tmp/sampled2.json"
! cmp -s "$tmp/sampled1.json" "$tmp/want2.json"

sampledir="$tmp/sampled_store"
"$tmp/svwsim" -json -config ssq+svw -bench gcc,twolf -insts "$smoke_insts" \
    $sample_flags -store-dir "$sampledir" -stats \
    >"$tmp/sampled3.json" 2>"$tmp/sampled3.err"
cmp "$tmp/sampled3.json" "$tmp/sampled1.json"
grep -q 'ckpt-puts=[1-9]' "$tmp/sampled3.err"
"$tmp/svwsim" -json -config nlq+svw -bench gcc,twolf -insts "$smoke_insts" \
    $sample_flags -store-dir "$sampledir" -stats >/dev/null 2>"$tmp/sampled4.err"
grep -q 'fast-forwards=0 ' "$tmp/sampled4.err"
grep -q 'ckpt-hits=[1-9]' "$tmp/sampled4.err"
"$tmp/svwstore" verify "$sampledir"

# Cluster smoke: svwctl over two svwd children must serve the same run
# and sweep byte-identically to svwsim -json — the fabric must be
# invisible to clients.
go build -o "$tmp" ./cmd/svwctl

"$tmp/svwd" -addr 127.0.0.1:0 -j 2 -grace 0 -slow-ms 0 >"$tmp/b1.out" 2>"$tmp/b1.err" &
b1_pid=$!
"$tmp/svwd" -addr 127.0.0.1:0 -j 2 -grace 0 -slow-ms 0 >"$tmp/b2.out" 2>"$tmp/b2.err" &
b2_pid=$!
trap 'kill "$b1_pid" "$b2_pid" 2>/dev/null || true; rm -rf "$tmp"' EXIT

wait_listening "$tmp/b1.out" "svwd backend 1" "$tmp/b1.err"
wait_listening "$tmp/b2.out" "svwd backend 2" "$tmp/b2.err"
b1=$(sed -n 's/^svwd: listening on //p' "$tmp/b1.out")
b2=$(sed -n 's/^svwd: listening on //p' "$tmp/b2.out")

"$tmp/svwctl" -addr 127.0.0.1:0 -grace 0 -slow-ms 0 \
    -backends "http://$b1,http://$b2" >"$tmp/ctl.out" 2>"$tmp/ctl.err" &
ctl_pid=$!
trap 'kill "$ctl_pid" "$b1_pid" "$b2_pid" 2>/dev/null || true; rm -rf "$tmp"' EXIT
wait_listening "$tmp/ctl.out" "svwctl" "$tmp/ctl.err"
ctl=$(sed -n 's/^svwctl: listening on //p' "$tmp/ctl.out")

"$tmp/svwload" -smoke -url "http://$ctl" \
    -configs ssq,ssq+svw -benches gcc,twolf -insts "$smoke_insts" >"$tmp/ctl_got.json"
"$tmp/svwsim" -json -config ssq -bench gcc -insts "$smoke_insts" >"$tmp/ctl_want.json"
"$tmp/svwsim" -json -config ssq,ssq+svw -bench gcc,twolf -insts "$smoke_insts" >>"$tmp/ctl_want.json"
cmp "$tmp/ctl_got.json" "$tmp/ctl_want.json"

# Coordinator observability smoke: svwctl serves the shared request
# histograms plus its per-backend dispatch series.
"$tmp/svwload" -metrics -url "http://$ctl" >"$tmp/ctl_metrics.txt"
grep -q '^svw_http_request_seconds_bucket' "$tmp/ctl_metrics.txt"
grep -q '^svwctl_backend_in_flight' "$tmp/ctl_metrics.txt"
grep -q '^svwctl_backend_healthy' "$tmp/ctl_metrics.txt"
grep -q '^svwctl_jobs_total' "$tmp/ctl_metrics.txt"

# Trace smoke: all three daemons ran with -slow-ms 0, so every traced
# request logged a slow_request line and bumped the slow counter. The
# slowest coordinator trace's ID must also appear on one of the backends'
# /debug/traces — the same request, correlated end to end.
"$tmp/svwload" -trace-top 5 -url "http://$ctl" >"$tmp/ctl_traces.out"
grep -q '^  dispatch ' "$tmp/ctl_traces.out"
tid=$(sed -n 's/^trace id=\([^ ]*\) .*/\1/p' "$tmp/ctl_traces.out" | head -1)
test -n "$tid"
"$tmp/svwload" -trace-top 64 -url "http://$b1" >"$tmp/backend_traces.out"
"$tmp/svwload" -trace-top 64 -url "http://$b2" >>"$tmp/backend_traces.out"
grep -q "trace id=$tid" "$tmp/backend_traces.out"
grep -q '"msg":"slow_request"' "$tmp/ctl.err"
grep -q 'svw_slow_requests_total{endpoint="/v1/sweep"} [1-9]' "$tmp/ctl_metrics.txt"

# Membership smoke: a coordinator started on a one-backend -backends-file
# grows to two under SIGHUP while a sweep is in flight; the straddling
# sweep and a post-growth sweep must both stay byte-identical to
# svwsim -json, and the new backend must appear in the pool.
echo "http://$b1" >"$tmp/backends.txt"
"$tmp/svwctl" -addr 127.0.0.1:0 -grace 0 \
    -backends-file "$tmp/backends.txt" >"$tmp/ctl2.out" 2>"$tmp/ctl2.err" &
ctl2_pid=$!
trap 'kill "$ctl2_pid" "$ctl_pid" "$b1_pid" "$b2_pid" 2>/dev/null || true; rm -rf "$tmp"' EXIT
wait_listening "$tmp/ctl2.out" "svwctl (membership)" "$tmp/ctl2.err"
ctl2=$(sed -n 's/^svwctl: listening on //p' "$tmp/ctl2.out")

"$tmp/svwload" -smoke -url "http://$ctl2" \
    -configs ssq,nlq,rle -benches gcc,twolf -insts "$smoke_insts" >"$tmp/m_got.json" &
sweep_pid=$!
echo "http://$b2" >>"$tmp/backends.txt"
kill -HUP "$ctl2_pid"
wait "$sweep_pid"

"$tmp/svwsim" -json -config ssq -bench gcc -insts "$smoke_insts" >"$tmp/m_want.json"
"$tmp/svwsim" -json -config ssq,nlq,rle -bench gcc,twolf -insts "$smoke_insts" >>"$tmp/m_want.json"
cmp "$tmp/m_got.json" "$tmp/m_want.json"

# The reload must have landed (logged, and the added backend now serves):
# a second identical sweep over the grown pool must match byte for byte.
grep -q '^svwctl: reload: +\[' "$tmp/ctl2.err"
"$tmp/svwload" -stats -url "http://$ctl2" >"$tmp/m_stats.json"
grep -q "http://$b2" "$tmp/m_stats.json"
"$tmp/svwload" -smoke -url "http://$ctl2" \
    -configs ssq,nlq,rle -benches gcc,twolf -insts "$smoke_insts" >"$tmp/m_got2.json"
cmp "$tmp/m_got2.json" "$tmp/m_want.json"

kill -TERM "$ctl2_pid"
wait "$ctl2_pid"
trap 'kill "$ctl_pid" "$b1_pid" "$b2_pid" 2>/dev/null || true; rm -rf "$tmp"' EXIT

# Graceful drain for the whole fabric.
kill -TERM "$ctl_pid"
wait "$ctl_pid"
kill -TERM "$b1_pid" "$b2_pid"
wait "$b1_pid" "$b2_pid"
trap 'rm -rf "$tmp"' EXIT

# Sharded-store smoke: two svwd with SEPARATE persistent store dirs and
# -peer-learn behind svwctl. The coordinator's sweep lands each cell's
# entry on its rendezvous store owner (routing and ownership share the
# hash); a repeat of the same sweep DIRECT at one backend must stay
# byte-identical with ZERO new engine executions — every cell that backend
# does not own arrives over the peer-read protocol — and SIGTERM must
# drain both write-behind queues so the two directories together hold
# exactly one verified entry per cell.
sdir1="$tmp/shard1"
sdir2="$tmp/shard2"
"$tmp/svwd" -addr 127.0.0.1:0 -j 2 -grace 0 -store-dir "$sdir1" -peer-learn \
    >"$tmp/s1.out" 2>"$tmp/s1.err" &
s1_pid=$!
"$tmp/svwd" -addr 127.0.0.1:0 -j 2 -grace 0 -store-dir "$sdir2" -peer-learn \
    >"$tmp/s2.out" 2>"$tmp/s2.err" &
s2_pid=$!
trap 'kill "$s1_pid" "$s2_pid" 2>/dev/null || true; rm -rf "$tmp"' EXIT
wait_listening "$tmp/s1.out" "sharded svwd 1" "$tmp/s1.err"
wait_listening "$tmp/s2.out" "sharded svwd 2" "$tmp/s2.err"
s1=$(sed -n 's/^svwd: listening on //p' "$tmp/s1.out")
s2=$(sed -n 's/^svwd: listening on //p' "$tmp/s2.out")

"$tmp/svwctl" -addr 127.0.0.1:0 -grace 0 \
    -backends "http://$s1,http://$s2" >"$tmp/sctl.out" 2>"$tmp/sctl.err" &
sctl_pid=$!
trap 'kill "$sctl_pid" "$s1_pid" "$s2_pid" 2>/dev/null || true; rm -rf "$tmp"' EXIT
wait_listening "$tmp/sctl.out" "svwctl (sharded)" "$tmp/sctl.err"
sctl=$(sed -n 's/^svwctl: listening on //p' "$tmp/sctl.out")

# 16 cells (8 configs x 2 benches): enough that "one backend owns every
# cell" — which would make the peer_hits assertion vacuous — has
# negligible odds (~2^-16).
shard_configs=ssq,nlq,rle,ssq+svw,nlq+svw,rle+svw,base-ssq,base-nlq
"$tmp/svwload" -smoke -url "http://$sctl" \
    -configs "$shard_configs" -benches gcc,twolf -insts "$smoke_insts" >"$tmp/s_got.json"
"$tmp/svwsim" -json -config ssq -bench gcc -insts "$smoke_insts" >"$tmp/s_want.json"
"$tmp/svwsim" -json -config "$shard_configs" -bench gcc,twolf -insts "$smoke_insts" \
    >>"$tmp/s_want.json"
cmp "$tmp/s_got.json" "$tmp/s_want.json"

# Repeat the sweep DIRECT at backend 1. (A repeat through the coordinator
# is all memory hits — routing and ownership share the hash — so only a
# direct sweep exercises the peer-read path.)
"$tmp/svwload" -stats -url "http://$s1" >"$tmp/s1_before.json"
misses_before=$(sed -n 's/.*"memo_misses": \([0-9]*\).*/\1/p' "$tmp/s1_before.json")
"$tmp/svwload" -smoke -url "http://$s1" \
    -configs "$shard_configs" -benches gcc,twolf -insts "$smoke_insts" >"$tmp/s_direct.json"
cmp "$tmp/s_direct.json" "$tmp/s_want.json"

# The repeat fetched at least one entry from the peer and computed nothing.
"$tmp/svwload" -stats -url "http://$s1" >"$tmp/s1_after.json"
grep -Eq '"peer_hits": [1-9]' "$tmp/s1_after.json"
misses_after=$(sed -n 's/.*"memo_misses": \([0-9]*\).*/\1/p' "$tmp/s1_after.json")
test "$misses_before" = "$misses_after"

kill -TERM "$sctl_pid"
wait "$sctl_pid"
kill -TERM "$s1_pid" "$s2_pid"
wait "$s1_pid" "$s2_pid"
trap 'rm -rf "$tmp"' EXIT

# Write-behind drained on SIGTERM: one entry per swept cell, split across
# the two shards (peer reads promote to memory only, so no entry is ever
# duplicated onto a non-owner's disk), and both directories verify clean.
n1=$("$tmp/svwstore" ls "$sdir1" | sed -n 's/^\([0-9][0-9]*\) entries,.*/\1/p')
n2=$("$tmp/svwstore" ls "$sdir2" | sed -n 's/^\([0-9][0-9]*\) entries,.*/\1/p')
test "$((n1 + n2))" -eq 16
test "$n1" -gt 0
test "$n2" -gt 0
"$tmp/svwstore" verify "$sdir1"
"$tmp/svwstore" verify "$sdir2"
